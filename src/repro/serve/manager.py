"""Multi-tenant engine manager: named indexes, LRU residency, live ingest.

:class:`EngineManager` turns the single-index :class:`~repro.serve.ServingEngine`
into a service that fronts **many named persisted indexes** ("tenants") at
once, under a bounded memory footprint:

* **Residency is LRU and row-budgeted.**  A tenant's engine is loaded on
  demand (via the existing memory-mapped persistence path) the first time a
  request names it, and stays resident until the sum of resident probe rows
  would exceed ``max_resident_rows`` — then the least-recently-used tenants
  are evicted back to disk to make room.  Eviction quiesces the tenant's
  serving engine (in-flight batches finish and answer their callers), and a
  tenant mutated since its last save is **persisted first**, so reloads
  always see the latest index.  Persisting replaces the on-disk files
  atomically (write to a staging directory, then ``os.replace``), which
  keeps memory-mapped arrays of other loaders valid.
* **Mutations interleave safely with serving.**  :meth:`partial_fit` /
  :meth:`remove` run on the tenant's single solver thread via
  :meth:`ServingEngine.mutate`, *between* micro-batches — never inside one.
  Every request therefore sees either the full pre-mutation or the full
  post-mutation index, and its result is byte-identical to the same call on
  a quiesced engine in that state.
* **Per-tenant stats survive eviction.**  Admission counters
  (admitted / shed / timed-out / rows served), tuning-cache hit rate, and
  cost-model confidence are folded into the tenant record whenever its
  engine is evicted, so :meth:`stats` reports lifetime totals regardless of
  how often the tenant cycled through residency.

Residency changes are serialised by one asyncio lock; request submission
happens outside it, so queries on resident tenants never wait on a reload.
A request can race an eviction of its own tenant — the serving engine then
sheds it with :class:`~repro.exceptions.ServingError` (see ``aclose``), and
the manager transparently re-acquires residency and retries.

Typical use::

    async with EngineManager(
        {"movies": "idx/movies", "songs": "idx/songs"},
        max_resident_rows=500_000,
    ) as manager:
        top = await manager.row_top_k("movies", queries, 10)
        await manager.partial_fit("movies", fresh_factor_rows)
        print(manager.stats("movies")["tuning_cache"]["hit_rate"])

Loading and persisting a tenant are blocking disk I/O performed on the
event loop (bounded by index size); mutations and solves always run off
the loop on the tenant's solver thread.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.facade import RetrievalEngine
from repro.exceptions import (
    InvalidParameterError,
    PersistenceError,
    RequestTimeoutError,
    ServiceOverloadedError,
    ServingError,
    UnknownTenantError,
)
from repro.serve.batcher import DEFAULT_MAX_BATCH_ROWS, DEFAULT_MAX_WAIT_US
from repro.serve.engine import (
    DEFAULT_FLUSH_LOG_LIMIT,
    DEFAULT_MAX_PENDING_ROWS,
    ServingEngine,
)
from repro.utils.validation import require_positive, require_positive_int

#: Files that make up a saved index (the unit the atomic persist replaces).
_INDEX_FILES = ("meta.json", "index.npz")


def _read_index_rows(path: Path) -> int:
    """Probe-row count of a saved index, read cheaply from its metadata."""
    meta_path = path / "meta.json"
    if not meta_path.is_file():
        raise PersistenceError(f"{path} is not a saved index (missing meta.json)")
    try:
        meta = json.loads(meta_path.read_text())
    except json.JSONDecodeError as error:
        raise PersistenceError(f"corrupt index metadata in {meta_path}: {error}") from error
    return int(meta.get("num_probes", 0))


def _engine_rank(engine) -> int | None:
    """The factor rank a loaded engine answers queries at, if discoverable."""
    store = getattr(engine.retriever, "store", None)
    if store is not None:
        return int(store.rank)
    if engine._probes is not None:
        return int(engine._probes.shape[1])
    return None


@dataclass
class _Tenant:
    """One named index and its residency / lifetime-stats state."""

    name: str
    path: Path
    #: Probe rows charged against the residency budget (live count while
    #: resident; last-known count — metadata or fold-time — otherwise).
    rows: int
    engine: RetrievalEngine | None = None
    serving: ServingEngine | None = None
    #: Mutated since the last save — evicting must persist first.
    dirty: bool = False
    #: LRU clock value of the last acquire.
    last_used: int = 0
    rank: int | None = None
    loads: int = 0
    evictions: int = 0
    mutations: int = 0
    #: Lifetime counters folded in at eviction (live engines add on top).
    admitted: int = 0
    shed: int = 0
    timed_out: int = 0
    rows_served: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    model_entries: int = 0
    model_confident: bool = False
    extra: dict = field(default_factory=dict)


class EngineManager:
    """Serve many named persisted indexes with LRU residency and live ingest.

    Parameters
    ----------
    tenants:
        The named indexes to serve: a ``{name: path}`` mapping or an
        iterable of ``(name, path)`` pairs, each path a directory written
        by :meth:`~repro.engine.facade.RetrievalEngine.save`.  Metadata is
        read eagerly so a missing index fails here, not mid-traffic.
    max_resident_rows:
        Residency budget: the sum of probe rows across resident tenants
        that may be held in memory at once (``None`` = unlimited).  A
        single tenant larger than the budget still loads alone — the
        budget bounds *co*-residency, mirroring the serving engine's
        oversized-request rule.
    mmap_mode:
        Forwarded to :meth:`RetrievalEngine.load` per tenant (default
        ``"r"``: memory-mapped, so evict/reload cycles stay cheap).
    max_batch_rows / max_wait_us / max_pending_rows / default_timeout /
    flush_log_limit:
        Per-tenant :class:`~repro.serve.ServingEngine` knobs, applied to
        every tenant's front-end.

    Use as an async context manager (or call :meth:`start` /
    :meth:`aclose` explicitly).  Closing the manager quiesces every
    resident tenant and persists the mutated ones.
    """

    def __init__(self, tenants, *,
                 max_resident_rows: int | None = None,
                 mmap_mode: str | None = "r",
                 max_batch_rows: int = DEFAULT_MAX_BATCH_ROWS,
                 max_wait_us: int = DEFAULT_MAX_WAIT_US,
                 max_pending_rows: int = DEFAULT_MAX_PENDING_ROWS,
                 default_timeout: float | None = None,
                 flush_log_limit: int | None = DEFAULT_FLUSH_LOG_LIMIT) -> None:
        """Register the tenants (metadata read eagerly); no engine is loaded yet."""
        items = list(tenants.items()) if isinstance(tenants, dict) else list(tenants)
        if not items:
            raise InvalidParameterError("EngineManager needs at least one tenant")
        self._tenants: dict[str, _Tenant] = {}
        for name, path in items:
            name = str(name)
            if not name:
                raise InvalidParameterError("tenant names must be non-empty strings")
            if name in self._tenants:
                raise InvalidParameterError(f"duplicate tenant name {name!r}")
            directory = Path(path)
            self._tenants[name] = _Tenant(
                name=name, path=directory, rows=_read_index_rows(directory)
            )
        if max_resident_rows is not None:
            max_resident_rows = require_positive_int(max_resident_rows, "max_resident_rows")
        self.max_resident_rows = max_resident_rows
        if mmap_mode not in (None, "r"):
            raise InvalidParameterError(
                f"mmap_mode must be None (eager loads) or 'r' (read-only maps), "
                f"got {mmap_mode!r}"
            )
        self._mmap_mode = mmap_mode
        if default_timeout is not None:
            require_positive(default_timeout, "default_timeout")
        self._serving_kwargs = dict(
            max_batch_rows=require_positive_int(max_batch_rows, "max_batch_rows"),
            max_wait_us=require_positive_int(max_wait_us, "max_wait_us"),
            max_pending_rows=require_positive_int(max_pending_rows, "max_pending_rows"),
            default_timeout=default_timeout,
            flush_log_limit=(
                None if flush_log_limit is None
                else require_positive_int(flush_log_limit, "flush_log_limit")
            ),
        )
        self._lock: asyncio.Lock | None = None
        self._tick = 0

    # ------------------------------------------------------------- life cycle

    async def start(self) -> "EngineManager":
        """Bind to the running event loop; tenants still load on demand."""
        if self._lock is None:
            self._lock = asyncio.Lock()
        return self

    async def aclose(self) -> None:
        """Quiesce every resident tenant; persist the mutated ones."""
        if self._lock is None:
            return
        async with self._lock:
            for record in self._tenants.values():
                if record.serving is not None:
                    await self._evict(record, count=False)
        self._lock = None

    async def __aenter__(self) -> "EngineManager":
        """Async context entry: :meth:`start`."""
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        """Async context exit: :meth:`aclose`."""
        await self.aclose()

    # -------------------------------------------------------------- residency

    @property
    def tenants(self) -> tuple[str, ...]:
        """All registered tenant names, in registration order."""
        return tuple(self._tenants)

    @property
    def resident_tenants(self) -> tuple[str, ...]:
        """Resident tenant names, least-recently-used first."""
        resident = [r for r in self._tenants.values() if r.serving is not None]
        return tuple(r.name for r in sorted(resident, key=lambda r: r.last_used))

    @property
    def resident_rows(self) -> int:
        """Probe rows currently held in memory across resident tenants."""
        return sum(
            int(record.engine.num_probes)
            for record in self._tenants.values()
            if record.engine is not None
        )

    def _require(self, name: str) -> _Tenant:
        record = self._tenants.get(name)
        if record is None:
            raise UnknownTenantError(
                f"unknown tenant {name!r}; registered tenants: {sorted(self._tenants)}"
            )
        return record

    async def _acquire(self, name: str) -> _Tenant:
        """Touch a tenant's LRU slot and make it resident (loading if needed)."""
        record = self._require(name)
        if self._lock is None:
            raise InvalidParameterError(
                "EngineManager is not started; use 'async with EngineManager(...)' "
                "or call await manager.start() first"
            )
        async with self._lock:
            self._tick += 1
            record.last_used = self._tick
            if record.serving is not None:
                return record
            await self._make_room(record.rows, active=record)
            engine = RetrievalEngine.load(record.path, mmap_mode=self._mmap_mode)
            serving = ServingEngine(engine, **self._serving_kwargs)
            await serving.start()
            record.engine = engine
            record.serving = serving
            record.loads += 1
            record.rows = int(engine.num_probes)
            record.rank = _engine_rank(engine)
            return record

    async def _make_room(self, incoming_rows: int, active: _Tenant) -> None:
        """Evict LRU tenants until ``incoming_rows`` fit under the budget.

        Idle tenants (no pending rows) are preferred victims; when every
        candidate is busy the least-recently-used one is quiesced anyway.
        With no other resident tenant left, an over-budget tenant still
        loads alone.
        """
        if self.max_resident_rows is None:
            return
        while self.resident_rows + incoming_rows > self.max_resident_rows:
            candidates = [
                record for record in self._tenants.values()
                if record.serving is not None and record is not active
            ]
            if not candidates:
                return
            idle = [r for r in candidates if r.serving.pending_rows == 0]
            victim = min(idle or candidates, key=lambda record: record.last_used)
            await self._evict(victim)

    async def _evict(self, record: _Tenant, *, count: bool = True) -> None:
        """Quiesce one tenant, fold its stats, persist if dirty, free the engine."""
        serving, engine = record.serving, record.engine
        record.serving = None
        record.engine = None
        await serving.aclose()
        self._fold(record, serving, engine)
        record.rows = int(engine.num_probes)
        if record.dirty:
            self._persist(record, engine)
        if count:
            record.evictions += 1

    def _persist(self, record: _Tenant, engine: RetrievalEngine) -> None:
        """Write a mutated engine back to the tenant's directory, atomically.

        The index is saved to a staging directory next to the target, then
        each file is moved into place with ``os.replace`` — readers that
        memory-mapped the old files keep valid mappings (the old inodes
        live until unmapped), and new loads see the new index.
        """
        staging = record.path.parent / f".{record.path.name}.staging"
        if staging.exists():
            shutil.rmtree(staging)
        engine.save(staging)
        for filename in _INDEX_FILES:
            os.replace(staging / filename, record.path / filename)
        shutil.rmtree(staging, ignore_errors=True)
        record.dirty = False

    def _fold(self, record: _Tenant, serving: ServingEngine,
              engine: RetrievalEngine) -> None:
        """Accumulate a quiesced engine's counters into the tenant record."""
        record.admitted += serving.requests_admitted
        record.shed += serving.requests_shed
        record.timed_out += serving.requests_timed_out
        record.rows_served += serving.rows_served
        cache = getattr(engine, "tuning_cache", None)
        if cache is not None:
            record.cache_hits += int(cache.hits)
            record.cache_misses += int(cache.misses)
        model = getattr(engine, "cost_model", None)
        if model is not None:
            record.model_entries = int(model.num_entries)
            record.model_confident = bool(model.has_confident_estimates())

    async def activate(self, name: str) -> dict:
        """Make one tenant resident now (budget applies) and return its stats."""
        await self._acquire(name)
        return self.stats(name)

    # --------------------------------------------------------------- requests

    async def above_theta(self, name: str, queries, theta: float, *,
                          timeout: float | None = None):
        """Solve Above-θ on one tenant (micro-batched with its other callers)."""
        while True:
            serving = (await self._acquire(name)).serving
            try:
                return await serving.above_theta(queries, theta, timeout=timeout)
            except (ServiceOverloadedError, RequestTimeoutError):
                raise
            except ServingError:
                continue  # lost a race with this tenant's eviction; reload

    async def row_top_k(self, name: str, queries, k: int, *,
                        timeout: float | None = None):
        """Solve Row-Top-k on one tenant (micro-batched with its other callers)."""
        while True:
            serving = (await self._acquire(name)).serving
            try:
                return await serving.row_top_k(queries, k, timeout=timeout)
            except (ServiceOverloadedError, RequestTimeoutError):
                raise
            except ServingError:
                continue  # lost a race with this tenant's eviction; reload

    # -------------------------------------------------------------- mutations

    async def partial_fit(self, name: str, new_probes) -> "EngineManager":
        """Insert probe rows into one tenant's live index, between batches.

        The tenant is marked dirty *before* the mutation is awaited: if an
        eviction overlaps the mutation, the solver-thread handoff still
        applies it before the quiesce completes, and the dirty flag makes
        the eviction persist it.  (Persisting an unmutated index on a
        failed mutation is harmless.)
        """
        while True:
            record = await self._acquire(name)
            serving = record.serving
            record.dirty = True
            try:
                await serving.mutate(record.engine.partial_fit, new_probes)
            except (ServiceOverloadedError, RequestTimeoutError):
                raise
            except ServingError:
                continue  # lost a race with this tenant's eviction; reload
            record.mutations += 1
            if record.engine is not None:
                record.rows = int(record.engine.num_probes)
            return self

    async def remove(self, name: str, probe_ids) -> "EngineManager":
        """Remove probe rows (by current id) from one tenant, between batches."""
        while True:
            record = await self._acquire(name)
            serving = record.serving
            record.dirty = True
            try:
                await serving.mutate(record.engine.remove, probe_ids)
            except (ServiceOverloadedError, RequestTimeoutError):
                raise
            except ServingError:
                continue  # lost a race with this tenant's eviction; reload
            record.mutations += 1
            if record.engine is not None:
                record.rows = int(record.engine.num_probes)
            return self

    # ------------------------------------------------------------------ stats

    def stats(self, name: str | None = None) -> dict:
        """Lifetime per-tenant stats (one tenant's dict, or ``{name: dict}``).

        Counters cover the tenant's whole service life, across every
        evict/reload cycle: ``admitted`` / ``shed`` / ``timed_out`` /
        ``rows_served`` admission totals, the tuning cache's cumulative
        ``hit_rate`` (``None`` before any lookup), and the cost model's
        entry count and confidence flag.
        """
        if name is not None:
            return self._tenant_stats(self._require(name))
        return {
            tenant_name: self._tenant_stats(record)
            for tenant_name, record in self._tenants.items()
        }

    def _tenant_stats(self, record: _Tenant) -> dict:
        admitted, shed = record.admitted, record.shed
        timed_out, rows_served = record.timed_out, record.rows_served
        cache_hits, cache_misses = record.cache_hits, record.cache_misses
        entries, confident = record.model_entries, record.model_confident
        pending = 0
        if record.serving is not None:
            serving, engine = record.serving, record.engine
            admitted += serving.requests_admitted
            shed += serving.requests_shed
            timed_out += serving.requests_timed_out
            rows_served += serving.rows_served
            pending = serving.pending_rows
            cache = getattr(engine, "tuning_cache", None)
            if cache is not None:
                cache_hits += int(cache.hits)
                cache_misses += int(cache.misses)
            model = getattr(engine, "cost_model", None)
            if model is not None:
                entries = int(model.num_entries)
                confident = bool(model.has_confident_estimates())
        lookups = cache_hits + cache_misses
        return {
            "name": record.name,
            "path": str(record.path),
            "resident": record.serving is not None,
            "rows": int(record.rows),
            "rank": record.rank,
            "dirty": record.dirty,
            "loads": record.loads,
            "evictions": record.evictions,
            "mutations": record.mutations,
            "admitted": admitted,
            "shed": shed,
            "timed_out": timed_out,
            "rows_served": rows_served,
            "pending_rows": pending,
            "tuning_cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": round(cache_hits / lookups, 4) if lookups else None,
            },
            "cost_model": {"entries": entries, "confident": confident},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        """Debug representation with tenant count, residency, and budget."""
        return (
            f"EngineManager(tenants={len(self._tenants)}, "
            f"resident={list(self.resident_tenants)}, "
            f"resident_rows={self.resident_rows}, "
            f"max_resident_rows={self.max_resident_rows})"
        )
