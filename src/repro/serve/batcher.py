"""Dynamic micro-batching: coalesce compatible requests, bounded delay.

The batcher implements the inference-server pattern on top of LEMP's
batched solvers: requests that share a :class:`BatchKey` — the same problem
and the same parameter (θ or k) — are appended to one pending group, and
the group is flushed to the solver when either

* its total row count reaches ``max_batch_rows`` (flushed *synchronously*
  inside the submit that crossed the budget — a request is never split, so
  a single request larger than the budget forms its own batch), or
* ``max_wait_us`` microseconds elapse since the group's first request
  (an event-loop timer, so a lone request is never stalled longer than the
  configured bound).

Coalescing is *correctness-free* by construction: every LEMP solve treats
query rows independently (per-row kernel rounding, per-(query, bucket)
counters), so a request's rows produce byte-identical results whether they
are solved alone or stacked under a batch with arbitrary other requests.
The batcher therefore only changes *when* work runs, never what it
returns; see :mod:`repro.serve.engine` for the demultiplexing that relies
on this.

The batcher is an event-loop-affine object: all methods must be called
from the loop passed at construction.  It performs no admission control of
its own — :class:`~repro.serve.ServingEngine` bounds in-flight rows before
requests ever reach it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

#: Default flush budget: rows across one group before an immediate flush.
DEFAULT_MAX_BATCH_ROWS = 256

#: Default bounded delay: microseconds a group may wait for co-batchable
#: requests before the timer flushes it.
DEFAULT_MAX_WAIT_US = 2000


@dataclass(frozen=True)
class BatchKey:
    """Compatibility key of one micro-batch: problem plus exact parameter.

    Requests only coalesce when a single solver call can serve them all:
    the same problem (``"above_theta"`` or ``"row_top_k"``) with the same
    θ / k.  The parameter is compared exactly (no epsilon): merging nearby
    thetas would change results, and the serving layer never trades
    correctness for batching.
    """

    problem: str
    parameter: float


@dataclass
class PendingRequest:
    """One admitted request waiting in (or flushed from) a group.

    ``future`` resolves to the request's demultiplexed result;
    ``rows`` is cached because admission accounting and flush budgeting
    read it on every submit.  ``abandoned`` is set by the engine when the
    caller's deadline elapsed — the batch still runs for its other members,
    but an abandoned request is never demultiplexed (and never counted as
    served).  ``released`` guards the one-shot return of the request's rows
    to the admission budget.
    """

    queries: np.ndarray
    rows: int
    future: asyncio.Future
    abandoned: bool = False
    released: bool = False


@dataclass
class FlushRecord:
    """Observability record of one flushed micro-batch (kept by the engine)."""

    key: BatchKey
    num_requests: int
    num_rows: int
    #: ``"rows"`` (budget reached), ``"timer"`` (bounded delay elapsed) or
    #: ``"drain"`` (engine shutdown flushed the remainder).
    reason: str


@dataclass
class _Group:
    """Mutable per-key accumulation state."""

    requests: list = field(default_factory=list)
    rows: int = 0
    timer: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Per-key request coalescing with a row budget and a bounded delay.

    ``flush(key, requests, reason)`` is the engine-provided callback that
    takes ownership of a flushed group; it is invoked on the event loop
    (synchronously from :meth:`submit` for budget flushes, from a timer
    callback for delay flushes).
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, flush, *,
                 max_batch_rows: int = DEFAULT_MAX_BATCH_ROWS,
                 max_wait_us: int = DEFAULT_MAX_WAIT_US) -> None:
        """Bind the batcher to a loop and a flush callback."""
        self._loop = loop
        self._flush_callback = flush
        self.max_batch_rows = int(max_batch_rows)
        self.max_wait_us = int(max_wait_us)
        self._groups: dict[BatchKey, _Group] = {}

    @property
    def pending_rows(self) -> int:
        """Rows currently queued (admitted, not yet flushed) across groups."""
        return sum(group.rows for group in self._groups.values())

    def submit(self, key: BatchKey, request: PendingRequest) -> None:
        """Queue one request; may flush its group synchronously (row budget)."""
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _Group()
        group.requests.append(request)
        group.rows += request.rows
        if group.rows >= self.max_batch_rows:
            self._flush(key, "rows")
        elif group.timer is None:
            group.timer = self._loop.call_later(
                self.max_wait_us / 1e6, self._flush, key, "timer"
            )

    def _flush(self, key: BatchKey, reason: str) -> None:
        """Detach a group and hand it to the flush callback."""
        group = self._groups.pop(key, None)
        if group is None:  # pragma: no cover - timer raced a budget flush
            return
        if group.timer is not None:
            group.timer.cancel()
        self._flush_callback(key, group.requests, reason)

    def drain(self) -> None:
        """Flush every pending group immediately (engine shutdown)."""
        for key in list(self._groups):
            self._flush(key, "drain")
