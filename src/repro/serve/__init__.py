"""Serving front-end: micro-batching, admission control, process workers.

The :mod:`repro.serve` package turns the library's batch-oriented engine
into an online service without giving up its determinism contract:

* :class:`ServingEngine` — an asyncio facade admitting concurrent
  ``above_theta`` / ``row_top_k`` requests, coalescing compatible ones in
  a bounded-delay micro-batcher, executing each micro-batch through the
  engine's planner/executor, and demultiplexing per-request results that
  are byte-identical to standalone calls.
* :class:`MicroBatcher` / :class:`BatchKey` — the coalescing mechanism:
  requests group by (problem, exact parameter) and flush on a row budget
  or a microsecond-bounded timer.
* :class:`EngineManager` — the multi-tenant layer above it: many named
  persisted indexes served at once with LRU row-budgeted residency
  (evict back to disk / reload on demand via the mmap path), per-tenant
  lifetime stats, and ``partial_fit`` / ``remove`` interleaved safely
  with in-flight queries on the same tenant.
* :class:`WorkerPool` — the planner's third execution backend: N worker
  processes each memory-mapping one read-only saved index
  (``load_engine(path, mmap_mode="r")``), attached to an engine with
  :meth:`~repro.engine.facade.RetrievalEngine.use_worker_pool`.
* :func:`serve_compatibility` — per-retriever feature report, also
  printed by ``repro explain``.

Typical composition — an asyncio server whose batches fan out over
processes sharing one index mapping::

    engine = RetrievalEngine.load(index_dir, mmap_mode="r")
    with WorkerPool(index_dir, workers=4) as pool:
        engine.use_worker_pool(pool)
        async with ServingEngine(engine, max_wait_us=500) as serving:
            ...await serving.row_top_k(rows, 10)...
"""

from repro.exceptions import (
    RequestTimeoutError,
    ServiceOverloadedError,
    ServingError,
    UnknownTenantError,
)
from repro.serve.batcher import (
    DEFAULT_MAX_BATCH_ROWS,
    DEFAULT_MAX_WAIT_US,
    BatchKey,
    FlushRecord,
    MicroBatcher,
    PendingRequest,
)
from repro.serve.engine import (
    DEFAULT_FLUSH_LOG_LIMIT,
    DEFAULT_MAX_PENDING_ROWS,
    ServingEngine,
    describe_serve_compatibility,
    serve_compatibility,
)
from repro.serve.manager import EngineManager
from repro.serve.workers import WorkerPool

__all__ = [
    "DEFAULT_FLUSH_LOG_LIMIT",
    "DEFAULT_MAX_BATCH_ROWS",
    "DEFAULT_MAX_PENDING_ROWS",
    "DEFAULT_MAX_WAIT_US",
    "BatchKey",
    "EngineManager",
    "FlushRecord",
    "MicroBatcher",
    "PendingRequest",
    "RequestTimeoutError",
    "ServiceOverloadedError",
    "ServingEngine",
    "ServingError",
    "UnknownTenantError",
    "WorkerPool",
    "describe_serve_compatibility",
    "serve_compatibility",
]
