"""Process workers sharing one memory-mapped read-only index.

:class:`WorkerPool` is the third execution backend of the
:class:`~repro.engine.planner.ExecutionPlanner` (after serial and threads):
N worker processes are started from an index *directory* (not a live
engine), and each worker's initializer loads that directory with
``load_engine(path, mmap_mode="r")`` — every index array becomes a
read-only :class:`numpy.memmap`, so all N workers (and the parent, if it
maps the same directory) share one physical copy of the index in the OS
page cache instead of N+1 heap copies.

Determinism across the process boundary mirrors the thread backend's
contract:

* **Results** are byte-identical to a serial in-process run
  unconditionally: workers run the exact same solve on the exact same
  arrays, and the blocked verification kernel keeps each row's rounding
  independent of its co-batched rows.
* **Integer counters** match a serial run when the saved index carries a
  warm tuning cache (``meta["tuning_cache"]``, written by
  :func:`~repro.engine.persistence.save_engine` for a warmed engine):
  every worker restores the same tuned per-bucket parameters, so candidate
  generation — and with it every :class:`~repro.core.stats.RunStats`
  counter — is identical wherever the chunk runs.  A *cold* saved index
  lets each worker run the wall-clock tuner independently; results stay
  bit-identical (candidates are verified exactly) but candidate counters
  may drift, exactly as documented for cold thread runs.

Workers are plain ``concurrent.futures`` processes started with the
``spawn`` method — no state is forked from the parent, which keeps the
pool safe to create from threaded and asyncio programs alike.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np

from repro.exceptions import InvalidParameterError, PersistenceError
from repro.utils.validation import require_positive_int

#: Engine loaded once per worker process by :func:`_worker_init`.
_WORKER_ENGINE = None


def _worker_init(index_path: str) -> None:
    """Process initializer: map the shared index read-only, once."""
    global _WORKER_ENGINE
    from repro.engine.persistence import load_engine

    _WORKER_ENGINE = load_engine(index_path, mmap_mode="r")


def _worker_solve(problem: str, parameter: float, block: np.ndarray):
    """Solve one chunk in this worker; returns ``(result, stats)``.

    The solve runs on a :meth:`~repro.core.api.Retriever.worker_view` of the
    worker's engine, so the returned :class:`~repro.core.stats.RunStats` is
    exactly this chunk's delta — the parent merges the deltas in plan order,
    preserving the plan-order merge contract across the process boundary.
    """
    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker process was not initialised with an index")
    view = engine.retriever.worker_view()
    if problem == "above_theta":
        result = view.above_theta(block, float(parameter))
    elif problem == "row_top_k":
        result = view.row_top_k(block, int(parameter))
    else:
        raise InvalidParameterError(f"unknown problem for worker solve: {problem!r}")
    return result, view.stats


class WorkerPool:
    """N processes, one mmap'd index: the planner's ``"processes"`` backend.

    Parameters
    ----------
    index_path:
        Directory written by :meth:`~repro.engine.facade.RetrievalEngine.save`.
        Every worker maps it read-only at startup; the pool itself validates
        the path eagerly so a typo fails at construction, not first submit.
    workers:
        Number of worker processes (default 2).

    Attach to an engine with
    :meth:`~repro.engine.facade.RetrievalEngine.use_worker_pool`; the
    planner then emits ``backend="processes"`` plans whose chunks the
    executor ships here.  The pool is also a context manager::

        with WorkerPool(index_dir, workers=2) as pool:
            engine = RetrievalEngine.load(index_dir, mmap_mode="r")
            engine.use_worker_pool(pool)
            engine.row_top_k(queries, 10)
    """

    def __init__(self, index_path, workers: int = 2) -> None:
        """Validate the index directory and start the worker processes."""
        self.index_path = Path(index_path)
        if not (self.index_path / "meta.json").is_file():
            raise PersistenceError(
                f"{self.index_path} is not a saved index directory (missing meta.json); "
                "write one with engine.save(path) first"
            )
        self.size = require_positive_int(workers, "workers")
        self._executor = ProcessPoolExecutor(
            max_workers=self.size,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_worker_init,
            initargs=(str(self.index_path),),
        )

    def submit(self, problem: str, parameter: float, block: np.ndarray):
        """Submit one chunk; future resolves to ``(result, stats)``."""
        return self._executor.submit(
            _worker_solve, problem, float(parameter), np.ascontiguousarray(block)
        )

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker processes (idempotent)."""
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        """Context-manager entry; the pool is already running."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Shut the pool down on context exit."""
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        """Debug representation with path and size."""
        return f"WorkerPool(index_path={str(self.index_path)!r}, workers={self.size})"
