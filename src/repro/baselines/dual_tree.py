"""Dual-tree exact maximum-inner-product search (the paper's "D-Tree" baseline).

Following Curtin & Ram [13], both the query and the probe matrices are
organised in trees and processed jointly: a pair of nodes ``(N_q, N_p)`` is
pruned when the bound

``max_{q in N_q, p in N_p} qᵀp  <=  c_qᵀc_p + ‖c_q‖·R_p + ‖c_p‖·R_q + R_q·R_p``

cannot reach the threshold — the global θ for Above-θ, or the *worst* running
k-th-best value among the queries of ``N_q`` for Row-Top-k.  The latter is the
reason the paper finds the dual-tree bounds looser than the single-tree ones
for top-k workloads; the reproduction keeps that behaviour.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.baselines.ball_tree import BallTree
from repro.baselines.cover_tree import CoverTree
from repro.baselines.tree_node import TreeNode
from repro.core.api import Retriever
from repro.core.results import AboveThetaResult, TopKResult
from repro.engine.registry import register_retriever
from repro.utils.timer import Timer
from repro.utils.validation import as_float_matrix, check_rank_match, require_positive_int

#: Slack applied to pruning comparisons (see tree_search._PRUNE_SLACK).
_PRUNE_SLACK = 1e-9


def pair_upper_bound(query_node: TreeNode, probe_node: TreeNode) -> float:
    """Upper bound on the inner product between any query/probe pair of two nodes."""
    return (
        float(query_node.center @ probe_node.center)
        + query_node.center_norm * probe_node.radius
        + probe_node.center_norm * query_node.radius
        + query_node.radius * probe_node.radius
    )


@register_retriever(
    "dtree",
    variant_kw="tree_type",
    variants=("cover", "ball"),
    default_variant="cover",
    aliases=("d-tree",),
)
class DualTreeRetriever(Retriever):
    """Dual-tree retrieval over trees built on both the probe and query matrices."""

    name = "D-Tree"

    def __init__(self, tree_type: str = "cover", base: float = 1.3, leaf_size: int = 20, seed=None) -> None:
        super().__init__()
        if tree_type not in {"cover", "ball"}:
            raise ValueError(f"tree_type must be 'cover' or 'ball', got {tree_type!r}")
        self.tree_type = tree_type
        self.base = base
        self.leaf_size = leaf_size
        self.seed = seed
        self._probes: np.ndarray | None = None
        self._probe_tree = None

    def get_params(self) -> dict:
        return {
            "tree_type": self.tree_type,
            "base": self.base,
            "leaf_size": self.leaf_size,
            "seed": self.seed,
        }

    @property
    def num_probes(self) -> int | None:
        return None if self._probes is None else int(self._probes.shape[0])

    def _build_tree(self, points: np.ndarray):
        if self.tree_type == "cover":
            return CoverTree(points, base=self.base, leaf_size=self.leaf_size)
        return BallTree(points, leaf_size=self.leaf_size, seed=self.seed)

    def fit(self, probes) -> "DualTreeRetriever":
        self._probes = as_float_matrix(probes, "probes")
        with Timer() as timer:
            self._probe_tree = self._build_tree(self._probes)
        self.stats.preprocessing_seconds += timer.elapsed
        self._fitted = True
        return self

    # --------------------------------------------------------------- Above-θ

    def above_theta(self, queries, theta: float) -> AboveThetaResult:
        self._require_fitted()
        queries = as_float_matrix(queries, "queries")
        check_rank_match(queries, self._probes)
        with Timer() as preprocessing_timer:
            query_tree = self._build_tree(queries)
        self.stats.preprocessing_seconds += preprocessing_timer.elapsed

        query_ids: list[np.ndarray] = []
        probe_ids: list[np.ndarray] = []
        scores: list[np.ndarray] = []
        evaluated = 0

        with Timer() as timer:
            stack = [(query_tree.root, self._probe_tree.root)]
            while stack:
                query_node, probe_node = stack.pop()
                if pair_upper_bound(query_node, probe_node) < theta - _PRUNE_SLACK:
                    continue
                if query_node.is_leaf and probe_node.is_leaf:
                    q_indices = np.asarray(query_node.indices, dtype=np.intp)
                    p_indices = np.asarray(probe_node.indices, dtype=np.intp)
                    block = queries[q_indices] @ self._probes[p_indices].T
                    evaluated += block.size
                    rows, cols = np.nonzero(block >= theta)
                    if rows.size:
                        query_ids.append(q_indices[rows].astype(np.int64))
                        probe_ids.append(p_indices[cols].astype(np.int64))
                        scores.append(block[rows, cols])
                elif query_node.is_leaf or (
                    not probe_node.is_leaf
                    and probe_node.radius >= query_node.radius
                ):
                    for child in probe_node.children:
                        stack.append((query_node, child))
                else:
                    for child in query_node.children:
                        stack.append((child, probe_node))
        self.stats.retrieval_seconds += timer.elapsed
        self.stats.num_queries += queries.shape[0]
        self.stats.candidates += evaluated
        self.stats.inner_products += evaluated
        if query_ids:
            result = AboveThetaResult(
                np.concatenate(query_ids), np.concatenate(probe_ids), np.concatenate(scores), theta
            )
        else:
            result = AboveThetaResult(np.empty(0), np.empty(0), np.empty(0), theta)
        self.stats.results += result.num_results
        return result

    # ------------------------------------------------------------ Row-Top-k

    def row_top_k(self, queries, k: int) -> TopKResult:
        self._require_fitted()
        queries = as_float_matrix(queries, "queries")
        check_rank_match(queries, self._probes)
        require_positive_int(k, "k")
        effective_k = min(k, self._probes.shape[0])
        num_queries = queries.shape[0]

        with Timer() as preprocessing_timer:
            query_tree = self._build_tree(queries)
        self.stats.preprocessing_seconds += preprocessing_timer.elapsed

        heaps: list[list[float]] = [[] for _ in range(num_queries)]
        top_entries: list[dict[int, float]] = [dict() for _ in range(num_queries)]
        evaluated = 0

        def node_threshold(query_node: TreeNode) -> float:
            """Worst (smallest) running k-th best among the node's queries."""
            worst = np.inf
            for query_id in query_node.subtree_indices():
                heap = heaps[query_id]
                value = heap[0] if len(heap) >= effective_k else -np.inf
                if value < worst:
                    worst = value
                if worst == -np.inf:
                    break
            return worst

        with Timer() as timer:
            stack = [(query_tree.root, self._probe_tree.root)]
            while stack:
                query_node, probe_node = stack.pop()
                bound = pair_upper_bound(query_node, probe_node)
                if bound < node_threshold(query_node):
                    continue
                if query_node.is_leaf and probe_node.is_leaf:
                    q_indices = np.asarray(query_node.indices, dtype=np.intp)
                    p_indices = np.asarray(probe_node.indices, dtype=np.intp)
                    block = queries[q_indices] @ self._probes[p_indices].T
                    evaluated += block.size
                    for row, query_id in enumerate(q_indices):
                        heap = heaps[query_id]
                        entries = top_entries[query_id]
                        for col, probe_id in enumerate(p_indices):
                            score = float(block[row, col])
                            if len(heap) < effective_k:
                                heapq.heappush(heap, score)
                                entries[int(probe_id)] = score
                            elif score > heap[0]:
                                heapq.heapreplace(heap, score)
                                entries[int(probe_id)] = score
                elif query_node.is_leaf or (
                    not probe_node.is_leaf
                    and probe_node.radius >= query_node.radius
                ):
                    children = sorted(
                        probe_node.children,
                        key=lambda child: -pair_upper_bound(query_node, child),
                    )
                    for child in reversed(children):
                        stack.append((query_node, child))
                else:
                    for child in query_node.children:
                        stack.append((child, probe_node))
        self.stats.retrieval_seconds += timer.elapsed
        self.stats.num_queries += num_queries
        self.stats.candidates += evaluated
        self.stats.inner_products += evaluated

        indices = np.full((num_queries, k), -1, dtype=np.int64)
        scores = np.full((num_queries, k), -np.inf)
        for query_id in range(num_queries):
            entries = top_entries[query_id]
            if not entries:
                continue
            items = sorted(entries.items(), key=lambda item: -item[1])[:effective_k]
            for slot, (probe_id, score) in enumerate(items):
                indices[query_id, slot] = probe_id
                scores[query_id, slot] = score
        self.stats.results += int(np.sum(indices >= 0))
        return TopKResult(indices, scores, k)
