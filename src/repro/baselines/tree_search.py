"""Single-tree exact maximum-inner-product search (the paper's "Tree" baseline).

The searcher traverses a cover tree or ball tree over the probe vectors and
prunes subtrees whose MIPS upper bound ``qᵀc + ‖q‖·radius`` cannot reach the
current threshold: the global θ for Above-θ, or the running k-th best value
for Row-Top-k (best-first traversal).  The number of exact inner products it
evaluates is recorded as the candidate count, matching the paper's
"candidates per query" metric.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.baselines.ball_tree import BallTree
from repro.baselines.cover_tree import CoverTree
from repro.core.api import Retriever
from repro.core.results import AboveThetaResult, TopKResult
from repro.engine.registry import register_retriever
from repro.utils.timer import Timer
from repro.utils.validation import as_float_matrix, check_rank_match

#: Slack applied to pruning comparisons so results lying exactly on the
#: threshold are never lost to floating-point rounding of the node bounds.
_PRUNE_SLACK = 1e-9


class TreeSearcher:
    """Exact MIPS over a single tree built on a fixed point set."""

    def __init__(self, tree, points: np.ndarray) -> None:
        self.tree = tree
        self.points = points

    # ------------------------------------------------------------- Above-θ

    def above_theta(self, query: np.ndarray, theta: float) -> tuple[np.ndarray, np.ndarray, int]:
        """Return ``(indices, scores, num_evaluated)`` of probes with ``qᵀp >= theta``."""
        query = np.asarray(query, dtype=np.float64)
        query_norm = float(np.linalg.norm(query))
        hits: list[np.ndarray] = []
        scores: list[np.ndarray] = []
        evaluated = 0
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            if node.mips_upper_bound(query, query_norm) < theta - _PRUNE_SLACK:
                continue
            if node.is_leaf:
                indices = np.asarray(node.indices, dtype=np.intp)
                values = self.points[indices] @ query
                evaluated += indices.size
                mask = values >= theta
                if mask.any():
                    hits.append(indices[mask])
                    scores.append(values[mask])
            else:
                stack.extend(node.children)
        if hits:
            return np.concatenate(hits), np.concatenate(scores), evaluated
        return np.empty(0, dtype=np.intp), np.empty(0), evaluated

    def evaluated_above(self, query: np.ndarray, theta: float) -> np.ndarray:
        """Return the indices of probes whose exact product the search evaluates.

        Used when the tree acts as a *candidate generator* inside LEMP
        (LEMP-Tree): the candidate set is every probe reached in a leaf that
        could not be pruned.
        """
        query = np.asarray(query, dtype=np.float64)
        query_norm = float(np.linalg.norm(query))
        reached: list[np.ndarray] = []
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            if node.mips_upper_bound(query, query_norm) < theta - _PRUNE_SLACK:
                continue
            if node.is_leaf:
                reached.append(np.asarray(node.indices, dtype=np.intp))
            else:
                stack.extend(node.children)
        if reached:
            return np.concatenate(reached)
        return np.empty(0, dtype=np.intp)

    # ------------------------------------------------------------ Row-Top-k

    def top_k(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray, int]:
        """Best-first top-k MIPS; returns ``(indices, scores, num_evaluated)``."""
        query = np.asarray(query, dtype=np.float64)
        query_norm = float(np.linalg.norm(query))
        threshold = -np.inf
        best: list[tuple[float, int]] = []  # min-heap of (score, index)
        evaluated = 0
        counter = itertools.count()
        frontier = [(-self.tree.root.mips_upper_bound(query, query_norm), next(counter), self.tree.root)]
        while frontier:
            negative_bound, _, node = heapq.heappop(frontier)
            if -negative_bound < threshold and len(best) >= k:
                break
            if node.is_leaf:
                indices = np.asarray(node.indices, dtype=np.intp)
                values = self.points[indices] @ query
                evaluated += indices.size
                for index, value in zip(indices, values):
                    if len(best) < k:
                        heapq.heappush(best, (float(value), int(index)))
                    elif value > best[0][0]:
                        heapq.heapreplace(best, (float(value), int(index)))
                if len(best) >= k:
                    threshold = best[0][0]
            else:
                for child in node.children:
                    bound = child.mips_upper_bound(query, query_norm)
                    if bound >= threshold or len(best) < k:
                        heapq.heappush(frontier, (-bound, next(counter), child))
        best.sort(reverse=True)
        indices = np.asarray([index for _, index in best], dtype=np.int64)
        scores = np.asarray([score for score, _ in best], dtype=np.float64)
        return indices, scores, evaluated


@register_retriever(
    "tree", variant_kw="tree_type", variants=("cover", "ball"), default_variant="cover"
)
class SingleTreeRetriever(Retriever):
    """The paper's "Tree" baseline: one cover tree (or ball tree) over all probes."""

    name = "Tree"

    def __init__(self, tree_type: str = "cover", base: float = 1.3, leaf_size: int = 20, seed=None) -> None:
        super().__init__()
        if tree_type not in {"cover", "ball"}:
            raise ValueError(f"tree_type must be 'cover' or 'ball', got {tree_type!r}")
        self.tree_type = tree_type
        self.base = base
        self.leaf_size = leaf_size
        self.seed = seed
        self._searcher: TreeSearcher | None = None
        self._probes: np.ndarray | None = None

    def get_params(self) -> dict:
        return {
            "tree_type": self.tree_type,
            "base": self.base,
            "leaf_size": self.leaf_size,
            "seed": self.seed,
        }

    @property
    def num_probes(self) -> int | None:
        return None if self._probes is None else int(self._probes.shape[0])

    def fit(self, probes) -> "SingleTreeRetriever":
        self._probes = as_float_matrix(probes, "probes")
        with Timer() as timer:
            if self.tree_type == "cover":
                tree = CoverTree(self._probes, base=self.base, leaf_size=self.leaf_size)
            else:
                tree = BallTree(self._probes, leaf_size=self.leaf_size, seed=self.seed)
            self._searcher = TreeSearcher(tree, self._probes)
        self.stats.preprocessing_seconds += timer.elapsed
        self._fitted = True
        return self

    def above_theta(self, queries, theta: float) -> AboveThetaResult:
        self._require_fitted()
        queries = as_float_matrix(queries, "queries")
        check_rank_match(queries, self._probes)
        query_ids: list[np.ndarray] = []
        probe_ids: list[np.ndarray] = []
        scores: list[np.ndarray] = []
        with Timer() as timer:
            for query_id, query in enumerate(queries):
                indices, values, evaluated = self._searcher.above_theta(query, theta)
                self.stats.candidates += evaluated
                self.stats.inner_products += evaluated
                if indices.size:
                    query_ids.append(np.full(indices.size, query_id, dtype=np.int64))
                    probe_ids.append(indices.astype(np.int64))
                    scores.append(values)
        self.stats.retrieval_seconds += timer.elapsed
        self.stats.num_queries += queries.shape[0]
        if query_ids:
            result = AboveThetaResult(
                np.concatenate(query_ids), np.concatenate(probe_ids), np.concatenate(scores), theta
            )
        else:
            result = AboveThetaResult(np.empty(0), np.empty(0), np.empty(0), theta)
        self.stats.results += result.num_results
        return result

    def row_top_k(self, queries, k: int) -> TopKResult:
        self._require_fitted()
        queries = as_float_matrix(queries, "queries")
        check_rank_match(queries, self._probes)
        num_queries = queries.shape[0]
        indices = np.full((num_queries, k), -1, dtype=np.int64)
        scores = np.full((num_queries, k), -np.inf)
        with Timer() as timer:
            for query_id, query in enumerate(queries):
                found, values, evaluated = self._searcher.top_k(query, k)
                self.stats.candidates += evaluated
                self.stats.inner_products += evaluated
                indices[query_id, : found.size] = found
                scores[query_id, : values.size] = values
        self.stats.retrieval_seconds += timer.elapsed
        self.stats.num_queries += num_queries
        self.stats.results += int(np.sum(indices >= 0))
        return TopKResult(indices, scores, k)
