"""Metric (ball) tree over a point set, after Ram & Gray's metric-tree MIPS [11].

The tree is built top-down: each node picks two far-apart pivot points, splits
its points by which pivot is closer, and recurses.  Each node stores the mean
of its points as the center and the maximum distance to the center as the
radius, which is exactly what the MIPS pruning bound needs.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.tree_node import TreeNode
from repro.utils.rng import ensure_rng
from repro.utils.validation import as_float_matrix


class BallTree:
    """Binary metric tree with mean centers and distance radii.

    Parameters
    ----------
    points:
        ``(num_points, rank)`` array; rows are points.
    leaf_size:
        Nodes with at most this many points become leaves.
    seed:
        Seed for the random pivot selection (splits are otherwise deterministic).
    """

    def __init__(self, points, leaf_size: int = 20, seed=None) -> None:
        self.points = as_float_matrix(points, "points")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size
        self._rng = ensure_rng(seed)
        all_indices = np.arange(self.points.shape[0], dtype=np.intp)
        self.root = self._build(all_indices)

    # ------------------------------------------------------------------ build

    def _make_node(self, indices: np.ndarray, children: list | None) -> TreeNode:
        subset = self.points[indices]
        center = subset.mean(axis=0)
        radius = float(np.max(np.linalg.norm(subset - center, axis=1))) if indices.size else 0.0
        if children is None:
            return TreeNode(center, radius, indices, None)
        return TreeNode(center, radius, None, children)

    def _build(self, indices: np.ndarray) -> TreeNode:
        if indices.size <= self.leaf_size:
            return self._make_node(indices, None)
        subset = self.points[indices]
        # Pick two far-apart pivots: start from a random point, take the point
        # farthest from it, then the point farthest from that one.
        start = subset[self._rng.integers(indices.size)]
        distance_to_start = np.linalg.norm(subset - start, axis=1)
        pivot_a = subset[int(np.argmax(distance_to_start))]
        distance_to_a = np.linalg.norm(subset - pivot_a, axis=1)
        pivot_b = subset[int(np.argmax(distance_to_a))]
        distance_to_b = np.linalg.norm(subset - pivot_b, axis=1)
        closer_to_a = distance_to_a <= distance_to_b
        # Degenerate split (all points identical): fall back to an even split
        # so construction always terminates.
        if closer_to_a.all() or not closer_to_a.any():
            half = indices.size // 2
            left, right = indices[:half], indices[half:]
        else:
            left, right = indices[closer_to_a], indices[~closer_to_a]
        children = [self._build(left), self._build(right)]
        return self._make_node(indices, children)

    # ------------------------------------------------------------------ stats

    def num_nodes(self) -> int:
        """Number of nodes in the tree."""
        return self.root.num_nodes()

    def __len__(self) -> int:
        return self.points.shape[0]
