"""Cover tree over a point set (Beygelzimer et al. [12], as used by FastMKS [10]).

The tree is built batch-style, top-down: at every level a greedy
farthest-point sweep selects a set of centers such that every point lies
within the level's scale of some center (the *covering* invariant); points
are assigned to their nearest selected center and the construction recurses
with the scale divided by the expansion ``base`` (1.3 in the paper's setup).
Separation between siblings is enforced by the greedy sweep, which only keeps
a new center if it is not already covered.

Construction is intentionally more expensive than the ball tree — the paper's
observation that tree construction dominates the baselines' cost on skewed
datasets is part of what the reproduction needs to show.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.tree_node import TreeNode
from repro.utils.validation import as_float_matrix


class CoverTree:
    """Batch-constructed cover tree with geometric scales.

    Parameters
    ----------
    points:
        ``(num_points, rank)`` array of points.
    base:
        Expansion constant; scales shrink by this factor per level.
    leaf_size:
        Node size below which the recursion stops and a leaf is emitted.
    """

    def __init__(self, points, base: float = 1.3, leaf_size: int = 10) -> None:
        self.points = as_float_matrix(points, "points")
        if base <= 1.0:
            raise ValueError(f"base must be > 1, got {base}")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.base = float(base)
        self.leaf_size = leaf_size
        all_indices = np.arange(self.points.shape[0], dtype=np.intp)
        root_center_index = int(all_indices[0])
        distances = np.linalg.norm(self.points - self.points[root_center_index], axis=1)
        root_radius = float(distances.max()) if distances.size else 0.0
        self.root = self._build(all_indices, root_center_index, root_radius)

    def _node(self, indices: np.ndarray, center_index: int, children: list | None) -> TreeNode:
        center = self.points[center_index]
        if indices.size:
            radius = float(np.max(np.linalg.norm(self.points[indices] - center, axis=1)))
        else:
            radius = 0.0
        if children is None:
            return TreeNode(center, radius, indices, None)
        return TreeNode(center, radius, None, children)

    def _build(self, indices: np.ndarray, center_index: int, scale: float) -> TreeNode:
        if indices.size <= self.leaf_size or scale <= 1e-12:
            return self._node(indices, center_index, None)

        child_scale = scale / self.base
        subset = self.points[indices]

        # Greedy farthest-point covering at the child scale.  The node's own
        # center is always the first child center (the cover-tree nesting
        # invariant).
        center_positions = [int(np.nonzero(indices == center_index)[0][0]) if center_index in indices else 0]
        if indices[center_positions[0]] != center_index:
            # The center itself may live higher up the tree; seed with the
            # point closest to it instead.
            center_positions = [int(np.argmin(np.linalg.norm(subset - self.points[center_index], axis=1)))]
        covered_distance = np.linalg.norm(subset - subset[center_positions[0]], axis=1)
        while True:
            farthest = int(np.argmax(covered_distance))
            if covered_distance[farthest] <= child_scale:
                break
            center_positions.append(farthest)
            distance_to_new = np.linalg.norm(subset - subset[farthest], axis=1)
            covered_distance = np.minimum(covered_distance, distance_to_new)

        if len(center_positions) == 1:
            # No separation possible at this scale; drop straight down a level.
            return self._build(indices, center_index, child_scale)

        # Assign every point to its nearest selected center.
        centers_matrix = subset[center_positions]
        distance_matrix = np.linalg.norm(subset[:, None, :] - centers_matrix[None, :, :], axis=2)
        assignment = np.argmin(distance_matrix, axis=1)

        children = []
        for child_position, center_position in enumerate(center_positions):
            member_mask = assignment == child_position
            member_indices = indices[member_mask]
            if member_indices.size == 0:
                continue
            child_center_index = int(indices[center_position])
            children.append(self._build(member_indices, child_center_index, child_scale))
        return self._node(indices, center_index, children)

    def num_nodes(self) -> int:
        """Number of nodes in the tree."""
        return self.root.num_nodes()

    def __len__(self) -> int:
        return self.points.shape[0]
