"""Naive baseline: compute the full product and select the large entries.

This is the paper's "Naive" method (Section 2).  The product is computed in
row blocks so the memory footprint stays bounded even for larger synthetic
instances; every probe counts as a candidate for every query, which is the
reference point for all pruning-power comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import Retriever
from repro.core.results import AboveThetaResult, TopKResult
from repro.engine.registry import register_retriever
from repro.utils.timer import Timer
from repro.utils.validation import (
    as_float_matrix,
    check_rank_match,
    require_positive_int,
    validate_probe_ids,
)


@register_retriever("naive")
class NaiveRetriever(Retriever):
    """Full-product retrieval with blocked matrix multiplication."""

    name = "Naive"

    def __init__(self, block_size: int = 1024) -> None:
        super().__init__()
        require_positive_int(block_size, "block_size")
        self.block_size = block_size
        self._probes: np.ndarray | None = None

    def get_params(self) -> dict:
        return {"block_size": self.block_size}

    @property
    def num_probes(self) -> int | None:
        return None if self._probes is None else int(self._probes.shape[0])

    def fit(self, probes) -> "NaiveRetriever":
        self._probes = as_float_matrix(probes, "probes")
        self._fitted = True
        return self

    def partial_fit(self, new_probes) -> "NaiveRetriever":
        """Append new probe rows; they get ids ``size, size + 1, ...``."""
        if not self._fitted:
            return self.fit(new_probes)
        new_probes = as_float_matrix(new_probes, "new_probes")
        check_rank_match(new_probes, self._probes)
        self._probes = np.vstack([self._probes, new_probes])
        return self

    def remove(self, probe_ids) -> "NaiveRetriever":
        """Drop probe rows by id; survivors are renumbered consecutively."""
        self._require_fitted()
        probe_ids = validate_probe_ids(probe_ids, self._probes.shape[0])
        if probe_ids.size == 0:
            return self
        self._probes = np.ascontiguousarray(np.delete(self._probes, probe_ids, axis=0))
        return self

    def _blocks(self, queries: np.ndarray):
        for start in range(0, queries.shape[0], self.block_size):
            end = min(start + self.block_size, queries.shape[0])
            yield start, queries[start:end] @ self._probes.T

    def above_theta(self, queries, theta: float) -> AboveThetaResult:
        self._require_fitted()
        queries = as_float_matrix(queries, "queries")
        check_rank_match(queries, self._probes)
        query_ids: list[np.ndarray] = []
        probe_ids: list[np.ndarray] = []
        scores: list[np.ndarray] = []
        with Timer() as timer:
            for start, block in self._blocks(queries):
                rows, cols = np.nonzero(block >= theta)
                if rows.size:
                    query_ids.append(rows + start)
                    probe_ids.append(cols)
                    scores.append(block[rows, cols])
        self.stats.retrieval_seconds += timer.elapsed
        self.stats.num_queries += queries.shape[0]
        self.stats.candidates += queries.shape[0] * self._probes.shape[0]
        self.stats.inner_products += queries.shape[0] * self._probes.shape[0]
        if query_ids:
            result = AboveThetaResult(
                np.concatenate(query_ids), np.concatenate(probe_ids), np.concatenate(scores), theta
            )
        else:
            result = AboveThetaResult(np.empty(0), np.empty(0), np.empty(0), theta)
        self.stats.results += result.num_results
        return result

    def row_top_k(self, queries, k: int) -> TopKResult:
        self._require_fitted()
        queries = as_float_matrix(queries, "queries")
        check_rank_match(queries, self._probes)
        require_positive_int(k, "k")
        num_probes = self._probes.shape[0]
        effective_k = min(k, num_probes)
        num_queries = queries.shape[0]
        indices = np.full((num_queries, k), -1, dtype=np.int64)
        scores = np.full((num_queries, k), -np.inf)
        with Timer() as timer:
            for start, block in self._blocks(queries) if effective_k > 0 else ():
                top = np.argpartition(-block, effective_k - 1, axis=1)[:, :effective_k]
                top_scores = np.take_along_axis(block, top, axis=1)
                order = np.argsort(-top_scores, axis=1, kind="stable")
                top = np.take_along_axis(top, order, axis=1)
                top_scores = np.take_along_axis(top_scores, order, axis=1)
                indices[start:start + block.shape[0], :effective_k] = top
                scores[start:start + block.shape[0], :effective_k] = top_scores
        self.stats.retrieval_seconds += timer.elapsed
        self.stats.num_queries += num_queries
        self.stats.candidates += num_queries * num_probes
        self.stats.inner_products += num_queries * num_probes
        self.stats.results += int(np.sum(indices >= 0))
        return TopKResult(indices, scores, k)
