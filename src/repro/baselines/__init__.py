"""Baseline algorithms for the large-entry retrieval problem.

These are the methods the paper's evaluation compares LEMP against:

* :class:`~repro.baselines.naive.NaiveRetriever` — full product computation;
* :class:`~repro.baselines.ta.TARetriever` — Fagin et al.'s threshold algorithm
  with max-heap list selection, adapted to inner products;
* :class:`~repro.baselines.tree_search.SingleTreeRetriever` — exact MIPS over a
  cover tree (Curtin et al. [10]) or metric/ball tree (Ram & Gray [11]);
* :class:`~repro.baselines.dual_tree.DualTreeRetriever` — dual-tree exact MIPS
  (Curtin & Ram [13]).
"""

from repro.baselines.ball_tree import BallTree
from repro.baselines.cover_tree import CoverTree
from repro.baselines.dual_tree import DualTreeRetriever
from repro.baselines.naive import NaiveRetriever
from repro.baselines.ta import TARetriever
from repro.baselines.tree_search import SingleTreeRetriever, TreeSearcher

__all__ = [
    "BallTree",
    "CoverTree",
    "DualTreeRetriever",
    "NaiveRetriever",
    "SingleTreeRetriever",
    "TARetriever",
    "TreeSearcher",
]
