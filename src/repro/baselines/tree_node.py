"""Shared tree-node structure for the cover-tree and ball-tree baselines.

Both trees expose the same node interface so the single- and dual-tree MIPS
searchers (and the LEMP-Tree bucket retriever) can traverse either structure.
A node stores a representative *center*, the maximum Euclidean distance from
that center to any point in its subtree (*radius*), and either children or the
indices of the points it holds (leaf).
"""

from __future__ import annotations

import numpy as np


class TreeNode:
    """One node of a space-partitioning tree over a fixed point set."""

    __slots__ = ("center", "center_norm", "radius", "indices", "children", "count")

    def __init__(self, center: np.ndarray, radius: float, indices: np.ndarray | None, children: list | None) -> None:
        self.center = center
        self.center_norm = float(np.linalg.norm(center))
        self.radius = float(radius)
        self.indices = indices
        self.children = children or []
        if indices is not None:
            self.count = int(len(indices))
        else:
            self.count = int(sum(child.count for child in self.children))

    @property
    def is_leaf(self) -> bool:
        """Whether the node directly stores point indices."""
        return self.indices is not None

    def subtree_indices(self) -> np.ndarray:
        """Collect all point indices below this node (used in tests)."""
        if self.is_leaf:
            return np.asarray(self.indices, dtype=np.intp)
        parts = [child.subtree_indices() for child in self.children]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.intp)

    def mips_upper_bound(self, query: np.ndarray, query_norm: float) -> float:
        """Upper bound on ``max_{p in subtree} qᵀp`` (Ram & Gray / Curtin bound).

        For any point ``p`` in the subtree, ``p = c + e`` with ``‖e‖ <= radius``,
        hence ``qᵀp <= qᵀc + ‖q‖ · radius``.
        """
        return float(query @ self.center) + query_norm * self.radius

    def num_nodes(self) -> int:
        """Total number of nodes in the subtree (used for construction stats)."""
        return 1 + sum(child.num_nodes() for child in self.children)
