"""Threshold Algorithm (TA) baseline for large-entry retrieval.

Fagin et al.'s TA [4] keeps one list per coordinate, sorted by that
coordinate's value.  For an inner-product scoring function the lists of
coordinates where the query is positive are traversed from the largest values
downwards and those where it is negative from the smallest values upwards; the
sum of ``q_f`` times the current list frontiers is an upper bound on the score
of any unseen probe, so traversal can stop as soon as that bound drops below
the threshold (Above-θ) or the current k-th best score (Row-Top-k).

Two traversal strategies are provided:

* ``"heap"`` — the paper's strategy: repeatedly advance the single most
  promising list (the one whose next contribution ``q_f · p_f`` is largest),
  selected with a max-heap.  Faithful but slow in pure Python.
* ``"blocked"`` — advance every active list by a small block per round and
  evaluate the newly seen probes in a vectorised batch.  The stopping bound is
  identical, so the result is still exact; only the visiting order differs.
  This is the default used by the benchmark harness.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.api import Retriever
from repro.core.results import AboveThetaResult, TopKResult
from repro.engine.registry import register_retriever
from repro.utils.timer import Timer
from repro.utils.validation import as_float_matrix, check_rank_match, require_positive_int


class TASortedLists:
    """Per-coordinate sorted lists over the raw (unnormalised) probe matrix."""

    def __init__(self, probes: np.ndarray) -> None:
        self.size, self.rank = probes.shape
        order = np.argsort(probes, axis=0, kind="stable")
        self.ids = np.ascontiguousarray(order.T)          # ascending by value
        self.values = np.ascontiguousarray(np.take_along_axis(probes, order, axis=0).T)


@register_retriever(
    "ta", variant_kw="strategy", variants=("blocked", "heap"), default_variant="blocked"
)
class TARetriever(Retriever):
    """Threshold-algorithm retriever over the full probe matrix."""

    name = "TA"

    def __init__(self, strategy: str = "blocked", block_size: int = 64) -> None:
        super().__init__()
        if strategy not in {"heap", "blocked"}:
            raise ValueError(f"strategy must be 'heap' or 'blocked', got {strategy!r}")
        require_positive_int(block_size, "block_size")
        self.strategy = strategy
        self.block_size = block_size
        self._probes: np.ndarray | None = None
        self._lists: TASortedLists | None = None

    def get_params(self) -> dict:
        return {"strategy": self.strategy, "block_size": self.block_size}

    @property
    def num_probes(self) -> int | None:
        return None if self._probes is None else int(self._probes.shape[0])

    def fit(self, probes) -> "TARetriever":
        self._probes = as_float_matrix(probes, "probes")
        with Timer() as timer:
            self._lists = TASortedLists(self._probes)
        self.stats.preprocessing_seconds += timer.elapsed
        self._fitted = True
        return self

    # ------------------------------------------------------------ traversal

    def _scan(self, query: np.ndarray, stop_threshold) -> tuple[np.ndarray, np.ndarray, int]:
        """Traverse the lists for one query until the TA bound drops below the threshold.

        ``stop_threshold`` is a callable returning the current stopping value
        (constant θ for Above-θ, the running k-th best for Row-Top-k).  Returns
        the seen probe ids, their exact scores, and the number evaluated.
        """
        if self.strategy == "heap":
            return self._scan_heap(query, stop_threshold)
        return self._scan_blocked(query, stop_threshold)

    def _active_lists(self, query: np.ndarray) -> np.ndarray:
        return np.nonzero(query != 0.0)[0]

    def _frontier_value(self, coordinate: int, position: int, descending: bool) -> float:
        values = self._lists.values[coordinate]
        index = self._lists.size - 1 - position if descending else position
        return float(values[index])

    def _frontier_id(self, coordinate: int, position: int, descending: bool) -> int:
        ids = self._lists.ids[coordinate]
        index = self._lists.size - 1 - position if descending else position
        return int(ids[index])

    def _scan_heap(self, query, stop_threshold):
        lists = self._lists
        active = self._active_lists(query)
        if active.size == 0:
            return np.empty(0, dtype=np.intp), np.empty(0), 0
        descending = query > 0.0
        positions = {int(f): 0 for f in active}
        contributions = {
            int(f): query[f] * self._frontier_value(int(f), 0, bool(descending[f])) for f in active
        }
        bound = sum(contributions.values())
        heap = [(-contributions[int(f)], int(f)) for f in active]
        heapq.heapify(heap)
        seen: dict[int, float] = {}
        evaluated = 0
        size = lists.size
        while heap:
            if bound < stop_threshold() and len(seen) > 0:
                break
            negative_contribution, coordinate = heapq.heappop(heap)
            position = positions[coordinate]
            if position >= size:
                continue
            probe_id = self._frontier_id(coordinate, position, bool(descending[coordinate]))
            if probe_id not in seen:
                score = float(self._probes[probe_id] @ query)
                seen[probe_id] = score
                evaluated += 1
            positions[coordinate] = position + 1
            old_contribution = contributions[coordinate]
            if position + 1 < size:
                new_contribution = query[coordinate] * self._frontier_value(
                    coordinate, position + 1, bool(descending[coordinate])
                )
                contributions[coordinate] = new_contribution
                bound += new_contribution - old_contribution
                heapq.heappush(heap, (-new_contribution, coordinate))
            else:
                bound -= old_contribution
                contributions[coordinate] = 0.0
        ids = np.fromiter(seen.keys(), dtype=np.intp, count=len(seen))
        scores = np.fromiter(seen.values(), dtype=np.float64, count=len(seen))
        return ids, scores, evaluated

    def _scan_blocked(self, query, stop_threshold):
        lists = self._lists
        active = self._active_lists(query)
        if active.size == 0:
            return np.empty(0, dtype=np.intp), np.empty(0), 0
        size = lists.size
        seen_mask = np.zeros(size, dtype=bool)
        scores = np.zeros(size)
        evaluated = 0
        position = 0
        while position < size:
            block_end = min(position + self.block_size, size)
            new_ids: list[np.ndarray] = []
            for coordinate in active:
                if query[coordinate] > 0.0:
                    chunk = lists.ids[coordinate, size - block_end:size - position]
                else:
                    chunk = lists.ids[coordinate, position:block_end]
                new_ids.append(chunk)
            candidates = np.unique(np.concatenate(new_ids))
            fresh = candidates[~seen_mask[candidates]]
            if fresh.size:
                scores[fresh] = self._probes[fresh] @ query
                seen_mask[fresh] = True
                evaluated += fresh.size
            position = block_end
            # TA stopping bound from the new frontiers.
            bound = 0.0
            for coordinate in active:
                frontier = self._frontier_value(int(coordinate), position - 1, query[coordinate] > 0.0)
                bound += query[coordinate] * frontier
            if position < size and bound < stop_threshold():
                break
        ids = np.nonzero(seen_mask)[0]
        return ids, scores[ids], evaluated

    # ------------------------------------------------------------- problems

    def above_theta(self, queries, theta: float) -> AboveThetaResult:
        self._require_fitted()
        queries = as_float_matrix(queries, "queries")
        check_rank_match(queries, self._probes)
        query_ids: list[np.ndarray] = []
        probe_ids: list[np.ndarray] = []
        out_scores: list[np.ndarray] = []
        with Timer() as timer:
            for query_id, query in enumerate(queries):
                ids, scores, evaluated = self._scan(query, lambda: theta)
                self.stats.candidates += evaluated
                self.stats.inner_products += evaluated
                mask = scores >= theta
                if mask.any():
                    query_ids.append(np.full(int(mask.sum()), query_id, dtype=np.int64))
                    probe_ids.append(ids[mask].astype(np.int64))
                    out_scores.append(scores[mask])
        self.stats.retrieval_seconds += timer.elapsed
        self.stats.num_queries += queries.shape[0]
        if query_ids:
            result = AboveThetaResult(
                np.concatenate(query_ids), np.concatenate(probe_ids), np.concatenate(out_scores), theta
            )
        else:
            result = AboveThetaResult(np.empty(0), np.empty(0), np.empty(0), theta)
        self.stats.results += result.num_results
        return result

    def row_top_k(self, queries, k: int) -> TopKResult:
        self._require_fitted()
        queries = as_float_matrix(queries, "queries")
        check_rank_match(queries, self._probes)
        require_positive_int(k, "k")
        num_queries = queries.shape[0]
        effective_k = min(k, self._probes.shape[0])
        indices = np.full((num_queries, k), -1, dtype=np.int64)
        out_scores = np.full((num_queries, k), -np.inf)
        with Timer() as timer:
            for query_id, query in enumerate(queries):
                ids, scores, evaluated = self._scan_top_k(query, effective_k)
                self.stats.candidates += evaluated
                self.stats.inner_products += evaluated
                if ids.size:
                    take = min(effective_k, ids.size)
                    top = np.argpartition(-scores, take - 1)[:take]
                    order = np.argsort(-scores[top], kind="stable")
                    top = top[order]
                    indices[query_id, :take] = ids[top]
                    out_scores[query_id, :take] = scores[top]
        self.stats.retrieval_seconds += timer.elapsed
        self.stats.num_queries += num_queries
        self.stats.results += int(np.sum(indices >= 0))
        return TopKResult(indices, out_scores, k)

    def _scan_top_k(self, query, k: int):
        """Scan with a running k-th-best stopping threshold."""
        best: list[float] = []
        if self.strategy == "heap":
            return self._scan_heap_dynamic(query, k, best)
        return self._scan_blocked_dynamic(query, k, best)

    def _scan_heap_dynamic(self, query, k, best):
        def stop():
            return best[0] if len(best) >= k else -np.inf

        collected: dict[int, float] = {}

        # Reuse the heap scan but update the running top-k as probes are seen.
        lists = self._lists
        active = self._active_lists(query)
        if active.size == 0:
            return np.empty(0, dtype=np.intp), np.empty(0), 0
        descending = query > 0.0
        positions = {int(f): 0 for f in active}
        contributions = {
            int(f): query[f] * self._frontier_value(int(f), 0, bool(descending[f])) for f in active
        }
        bound = sum(contributions.values())
        heap = [(-contributions[int(f)], int(f)) for f in active]
        heapq.heapify(heap)
        evaluated = 0
        size = lists.size
        while heap:
            if bound < stop() and len(collected) > 0:
                break
            _, coordinate = heapq.heappop(heap)
            position = positions[coordinate]
            if position >= size:
                continue
            probe_id = self._frontier_id(coordinate, position, bool(descending[coordinate]))
            if probe_id not in collected:
                score = float(self._probes[probe_id] @ query)
                collected[probe_id] = score
                evaluated += 1
                if len(best) < k:
                    heapq.heappush(best, score)
                elif score > best[0]:
                    heapq.heapreplace(best, score)
            positions[coordinate] = position + 1
            old = contributions[coordinate]
            if position + 1 < size:
                new = query[coordinate] * self._frontier_value(
                    coordinate, position + 1, bool(descending[coordinate])
                )
                contributions[coordinate] = new
                bound += new - old
                heapq.heappush(heap, (-new, coordinate))
            else:
                bound -= old
                contributions[coordinate] = 0.0
        ids = np.fromiter(collected.keys(), dtype=np.intp, count=len(collected))
        scores = np.fromiter(collected.values(), dtype=np.float64, count=len(collected))
        return ids, scores, evaluated

    def _scan_blocked_dynamic(self, query, k, best):
        lists = self._lists
        active = self._active_lists(query)
        if active.size == 0:
            return np.empty(0, dtype=np.intp), np.empty(0), 0
        size = lists.size
        seen_mask = np.zeros(size, dtype=bool)
        scores = np.zeros(size)
        evaluated = 0
        position = 0
        while position < size:
            block_end = min(position + self.block_size, size)
            new_ids = []
            for coordinate in active:
                if query[coordinate] > 0.0:
                    chunk = lists.ids[coordinate, size - block_end:size - position]
                else:
                    chunk = lists.ids[coordinate, position:block_end]
                new_ids.append(chunk)
            candidates = np.unique(np.concatenate(new_ids))
            fresh = candidates[~seen_mask[candidates]]
            if fresh.size:
                fresh_scores = self._probes[fresh] @ query
                scores[fresh] = fresh_scores
                seen_mask[fresh] = True
                evaluated += fresh.size
                for score in fresh_scores:
                    if len(best) < k:
                        heapq.heappush(best, float(score))
                    elif score > best[0]:
                        heapq.heapreplace(best, float(score))
            position = block_end
            bound = 0.0
            for coordinate in active:
                frontier = self._frontier_value(int(coordinate), position - 1, query[coordinate] > 0.0)
                bound += query[coordinate] * frontier
            stop_value = best[0] if len(best) >= k else -np.inf
            if position < size and bound < stop_value:
                break
        ids = np.nonzero(seen_mask)[0]
        return ids, scores[ids], evaluated
