"""Named dataset registry mirroring the paper's Table 1 at reduced scale.

Every dataset of the evaluation is available under its paper name (lower-case)
plus the transposed variants used for Row-Top-k on the IE data:

``ie-svd``, ``ie-nmf``, ``ie-svd-t``, ``ie-nmf-t``, ``netflix``, ``kdd``.

Sizes are scaled down so that the pure-Python benchmark harness finishes in
minutes; the ``scale`` parameter selects how far ("tiny" for tests, "small"
for the default benchmarks, "medium" for a longer run).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.openie import ie_nmf_like, ie_svd_like
from repro.datasets.recommender import kdd_like, netflix_like
from repro.exceptions import UnknownDatasetError

#: Multiplicative factors applied to the base (small) dataset sizes.
SCALES = {"tiny": 0.25, "small": 1.0, "medium": 2.5}

#: Base sizes (num_queries, num_probes) at scale "small".
_BASE_SIZES = {
    "ie-svd": (2000, 500),
    "ie-nmf": (2000, 500),
    "netflix": (1500, 400),
    "kdd": (2000, 1200),
}

DATASET_NAMES = ("ie-svd", "ie-nmf", "ie-svd-t", "ie-nmf-t", "netflix", "kdd")


@dataclass
class Dataset:
    """A named pair of query and probe factor matrices."""

    name: str
    queries: np.ndarray
    probes: np.ndarray
    metadata: dict = field(default_factory=dict)

    @property
    def rank(self) -> int:
        """Number of latent factors."""
        return int(self.queries.shape[1])

    def transposed(self) -> "Dataset":
        """Swap the roles of queries and probes (the paper's ᵀ datasets)."""
        name = self.name[:-2] if self.name.endswith("-t") else self.name + "-t"
        return Dataset(name, self.probes, self.queries, dict(self.metadata))


def _scaled(size: int, scale_factor: float) -> int:
    return max(50, int(round(size * scale_factor)))


def load_dataset(name: str, scale: str = "small", rank: int = 50, method: str = "direct", seed: int = 0) -> Dataset:
    """Load one of the named synthetic datasets.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES` (case-insensitive).
    scale:
        ``"tiny"``, ``"small"`` or ``"medium"`` — see :data:`SCALES`.
    rank:
        Number of latent factors (the paper uses 50 throughout).
    method:
        ``"direct"`` for fast statistics-matched generation, ``"model"`` /
        ``"als"`` / ``"sgd"`` to actually factorise synthetic interaction data.
    seed:
        Random seed for generation.
    """
    key = name.lower()
    if key not in DATASET_NAMES:
        raise UnknownDatasetError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    if scale not in SCALES:
        raise UnknownDatasetError(f"unknown scale {scale!r}; expected one of {tuple(SCALES)}")
    scale_factor = SCALES[scale]

    transposed = key.endswith("-t")
    base_key = key[:-2] if transposed else key
    num_queries, num_probes = (_scaled(size, scale_factor) for size in _BASE_SIZES[base_key])

    if base_key == "ie-svd":
        generation_method = method if method in {"direct", "model"} else "model"
        queries, probes = ie_svd_like(num_queries, num_probes, rank, generation_method, seed)
    elif base_key == "ie-nmf":
        generation_method = method if method in {"direct", "model"} else "model"
        queries, probes = ie_nmf_like(num_queries, num_probes, rank, generation_method, seed)
    elif base_key == "netflix":
        queries, probes = netflix_like(num_queries, num_probes, rank, method, seed)
    else:
        queries, probes = kdd_like(num_queries, num_probes, rank, method, seed)

    dataset = Dataset(
        base_key,
        np.asarray(queries, dtype=np.float64),
        np.asarray(probes, dtype=np.float64),
        {"scale": scale, "method": method, "seed": seed, "rank": rank},
    )
    return dataset.transposed() if transposed else dataset
