"""Synthetic datasets matching the structural statistics of the paper's data.

The original evaluation uses factor matrices derived from Netflix, KDD-Cup'11
(Yahoo! Music) and a New-York-Times open-IE corpus.  Those datasets are not
redistributable, so this package generates synthetic stand-ins whose rank,
shape ratio, length skew (coefficient of variation) and sparsity match Table 1
of the paper at a reduced scale — either by direct construction
(``method="direct"``) or by actually factorising synthetic interaction data
with the MF substrate (``method="model"``).
"""

from repro.datasets.openie import generate_fact_matrix, ie_nmf_like, ie_svd_like
from repro.datasets.recommender import generate_ratings, kdd_like, netflix_like
from repro.datasets.registry import DATASET_NAMES, Dataset, load_dataset
from repro.datasets.stats import dataset_statistics, fraction_nonzero, length_cov
from repro.datasets.synthetic import synthetic_factors

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "dataset_statistics",
    "fraction_nonzero",
    "generate_fact_matrix",
    "generate_ratings",
    "ie_nmf_like",
    "ie_svd_like",
    "kdd_like",
    "length_cov",
    "load_dataset",
    "netflix_like",
    "synthetic_factors",
]
