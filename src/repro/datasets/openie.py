"""Synthetic open-information-extraction datasets (IE-SVD / IE-NMF-like).

The paper builds a binary argument-pattern matrix from ~16M NYT triples and
factorises it with SVD and NMF.  The reproduction generates a synthetic binary
fact matrix with Zipf-skewed argument and pattern frequencies (the source of
the heavy length skew in the resulting factors) and factorises it with the SVD
and NMF substrate (``method="model"``), or draws factors directly with the
CoV / sparsity values of Table 1 (``method="direct"``).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import synthetic_factors
from repro.mf.nmf import nmf_factorize
from repro.mf.svd import truncated_svd_factorize
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive_int

#: Length coefficients of variation and sparsity reported in Table 1.
IE_SVD_QUERY_COV = 1.51
IE_SVD_PROBE_COV = 4.44
IE_NMF_QUERY_COV = 1.56
IE_NMF_PROBE_COV = 5.53
IE_NMF_SPARSITY = 1.0 - 0.362  # 36.2% non-zero entries


def generate_fact_matrix(
    num_arguments: int,
    num_patterns: int,
    density: float = 0.02,
    argument_exponent: float = 1.1,
    pattern_exponent: float = 0.9,
    seed=None,
) -> np.ndarray:
    """Binary argument-pattern co-occurrence matrix with Zipf-skewed margins.

    Entry ``(i, j)`` is 1 with probability proportional to the popularity of
    argument ``i`` times the popularity of pattern ``j``, rescaled so the
    expected fraction of non-zero entries equals ``density``.
    """
    require_positive_int(num_arguments, "num_arguments")
    require_positive_int(num_patterns, "num_patterns")
    if not 0.0 < density < 1.0:
        raise ValueError(f"density must be in (0, 1), got {density}")
    rng = ensure_rng(seed)

    argument_popularity = 1.0 / np.arange(1, num_arguments + 1) ** argument_exponent
    pattern_popularity = 1.0 / np.arange(1, num_patterns + 1) ** pattern_exponent
    rng.shuffle(argument_popularity)
    rng.shuffle(pattern_popularity)

    probabilities = np.outer(argument_popularity, pattern_popularity)
    probabilities *= density / probabilities.mean()
    probabilities = np.clip(probabilities, 0.0, 1.0)
    return (rng.random((num_arguments, num_patterns)) < probabilities).astype(np.float64)


def ie_svd_like(
    num_arguments: int = 2000,
    num_patterns: int = 500,
    rank: int = 50,
    method: str = "direct",
    seed=0,
) -> tuple[np.ndarray, np.ndarray]:
    """IE-SVD-like query (argument) and probe (pattern) factor matrices."""
    if method == "direct":
        rng = ensure_rng(seed)
        queries = synthetic_factors(num_arguments, rank, length_cov=IE_SVD_QUERY_COV, seed=rng)
        probes = synthetic_factors(num_patterns, rank, length_cov=IE_SVD_PROBE_COV, seed=rng)
        return queries, probes
    if method != "model":
        raise ValueError(f"method must be 'direct' or 'model', got {method!r}")
    facts = generate_fact_matrix(num_arguments, num_patterns, seed=seed)
    return truncated_svd_factorize(facts, rank=min(rank, min(facts.shape) - 1))


def ie_nmf_like(
    num_arguments: int = 2000,
    num_patterns: int = 500,
    rank: int = 50,
    method: str = "direct",
    seed=0,
) -> tuple[np.ndarray, np.ndarray]:
    """IE-NMF-like query and probe factor matrices (non-negative and sparse)."""
    if method == "direct":
        rng = ensure_rng(seed)
        queries = synthetic_factors(
            num_arguments, rank, length_cov=IE_NMF_QUERY_COV,
            sparsity=IE_NMF_SPARSITY, nonnegative=True, seed=rng,
        )
        probes = synthetic_factors(
            num_patterns, rank, length_cov=IE_NMF_PROBE_COV,
            sparsity=IE_NMF_SPARSITY, nonnegative=True, seed=rng,
        )
        return queries, probes
    if method != "model":
        raise ValueError(f"method must be 'direct' or 'model', got {method!r}")
    facts = generate_fact_matrix(num_arguments, num_patterns, seed=seed)
    w, h, _ = nmf_factorize(facts, rank=min(rank, min(facts.shape) - 1), num_iterations=60, seed=seed)
    return w, h.T
