"""Synthetic collaborative-filtering datasets (Netflix-like and KDD-like).

Two generation paths are provided:

* ``method="direct"`` — factor matrices drawn directly with the length CoV of
  Table 1 (0.43/0.72 for Netflix, 0.38/0.40 for KDD).  Fast; used by the
  benchmark harness.
* ``method="model"`` — a synthetic rating matrix with latent structure and
  item-popularity skew is generated first and then factorised with the ALS or
  SGD substrate, mirroring how the paper's factor matrices came to be.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import synthetic_factors
from repro.mf.als import als_factorize
from repro.mf.sgd import sgd_factorize
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive_int

#: Length coefficients of variation reported in Table 1 of the paper.
NETFLIX_QUERY_COV = 0.43
NETFLIX_PROBE_COV = 0.72
KDD_QUERY_COV = 0.38
KDD_PROBE_COV = 0.40


def generate_ratings(
    num_users: int,
    num_items: int,
    num_ratings: int,
    rank: int = 10,
    noise: float = 0.5,
    rating_levels: int = 5,
    popularity_exponent: float = 1.0,
    seed=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate a synthetic rating matrix in COO form.

    Users and items have ground-truth latent factors; items are sampled with a
    Zipf-like popularity distribution so the observed matrix has the long-tail
    structure of real recommender data.  Ratings are the noisy inner products
    mapped onto a 1..``rating_levels`` star scale.
    """
    require_positive_int(num_users, "num_users")
    require_positive_int(num_items, "num_items")
    require_positive_int(num_ratings, "num_ratings")
    rng = ensure_rng(seed)

    user_factors = rng.standard_normal((num_users, rank)) / np.sqrt(rank)
    item_factors = rng.standard_normal((num_items, rank)) / np.sqrt(rank)

    popularity = 1.0 / np.arange(1, num_items + 1) ** popularity_exponent
    popularity /= popularity.sum()

    rows = rng.integers(num_users, size=num_ratings)
    cols = rng.choice(num_items, size=num_ratings, p=popularity)
    raw = np.einsum("ij,ij->i", user_factors[rows], item_factors[cols])
    raw = raw + noise * rng.standard_normal(num_ratings)
    # Map the (approximately normal) raw scores onto the star scale.
    scale = max(float(np.std(raw)), 1e-9)
    stars = np.clip(np.round((raw / scale) + (rating_levels + 1) / 2.0), 1, rating_levels)
    return rows, cols, stars.astype(np.float64)


def _factorized_dataset(
    num_users: int,
    num_items: int,
    rank: int,
    method: str,
    seed,
    density: float = 0.02,
) -> tuple[np.ndarray, np.ndarray]:
    rng = ensure_rng(seed)
    num_ratings = max(1, int(density * num_users * num_items))
    rows, cols, values = generate_ratings(num_users, num_items, num_ratings, seed=rng)
    if method == "als":
        user_factors, item_factors, _ = als_factorize(
            rows, cols, values, num_users, num_items, rank=rank, num_iterations=5, seed=rng
        )
    else:
        user_factors, item_factors, _ = sgd_factorize(
            rows, cols, values, num_users, num_items, rank=rank, num_epochs=5, seed=rng
        )
    return user_factors, item_factors


def netflix_like(
    num_users: int = 1500,
    num_items: int = 400,
    rank: int = 50,
    method: str = "direct",
    seed=0,
) -> tuple[np.ndarray, np.ndarray]:
    """Netflix-like query (user) and probe (item) factor matrices."""
    if method == "direct":
        rng = ensure_rng(seed)
        queries = synthetic_factors(num_users, rank, length_cov=NETFLIX_QUERY_COV, seed=rng)
        probes = synthetic_factors(num_items, rank, length_cov=NETFLIX_PROBE_COV, seed=rng)
        return queries, probes
    if method not in {"als", "sgd"}:
        raise ValueError(f"method must be 'direct', 'als' or 'sgd', got {method!r}")
    return _factorized_dataset(num_users, num_items, rank, method, seed)


def kdd_like(
    num_users: int = 2000,
    num_items: int = 1200,
    rank: int = 50,
    method: str = "direct",
    seed=0,
) -> tuple[np.ndarray, np.ndarray]:
    """KDD-Cup'11-like (Yahoo! Music) query and probe factor matrices.

    The KDD dataset has the least length skew of the paper's datasets, which
    is what makes it the hardest instance for every pruning method.
    """
    if method == "direct":
        rng = ensure_rng(seed)
        queries = synthetic_factors(num_users, rank, length_cov=KDD_QUERY_COV, seed=rng)
        probes = synthetic_factors(num_items, rank, length_cov=KDD_PROBE_COV, seed=rng)
        return queries, probes
    if method not in {"als", "sgd"}:
        raise ValueError(f"method must be 'direct', 'als' or 'sgd', got {method!r}")
    return _factorized_dataset(num_users, num_items, rank, method, seed)
