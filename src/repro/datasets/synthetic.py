"""Direct synthetic factor-matrix generation with controlled statistics.

The behaviour of every algorithm in the paper is driven by a handful of
structural properties of the factor matrices: the rank, the skew of the length
distribution (coefficient of variation, Table 1), and the sparsity of the
vectors.  :func:`synthetic_factors` generates matrices with prescribed values
for exactly these properties, which is the fast path used by the benchmark
harness (the slower path factorises synthetic interaction data, see
:mod:`repro.datasets.recommender` and :mod:`repro.datasets.openie`).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive_int


def lognormal_sigma_for_cov(length_cov: float) -> float:
    """Log-normal shape parameter producing the requested coefficient of variation."""
    if length_cov < 0.0:
        raise ValueError(f"length_cov must be non-negative, got {length_cov}")
    return float(np.sqrt(np.log1p(length_cov * length_cov)))


def synthetic_factors(
    num_vectors: int,
    rank: int = 50,
    length_cov: float = 0.5,
    sparsity: float = 0.0,
    nonnegative: bool = False,
    mean_length: float = 1.0,
    seed=None,
) -> np.ndarray:
    """Generate a factor matrix with controlled length skew and sparsity.

    Parameters
    ----------
    num_vectors:
        Number of rows (vectors).
    rank:
        Dimensionality of each vector.
    length_cov:
        Coefficient of variation (std / mean) of the vector lengths; lengths
        follow a log-normal distribution with this CoV.
    sparsity:
        Fraction of coordinates set to zero (0 = dense).  At least one
        coordinate per vector is always kept.
    nonnegative:
        Use non-negative directions (|N(0,1)| entries), as NMF factors are.
    mean_length:
        Mean of the length distribution.
    seed:
        Seed or generator.

    Returns
    -------
    numpy.ndarray
        ``(num_vectors, rank)`` factor matrix.
    """
    require_positive_int(num_vectors, "num_vectors")
    require_positive_int(rank, "rank")
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    if mean_length <= 0.0:
        raise ValueError(f"mean_length must be positive, got {mean_length}")
    rng = ensure_rng(seed)

    directions = rng.standard_normal((num_vectors, rank))
    if nonnegative:
        directions = np.abs(directions)
    if sparsity > 0.0:
        mask = rng.random((num_vectors, rank)) < sparsity
        # Guarantee at least one surviving coordinate per vector.
        forced = rng.integers(rank, size=num_vectors)
        mask[np.arange(num_vectors), forced] = False
        directions = np.where(mask, 0.0, directions)

    norms = np.linalg.norm(directions, axis=1)
    norms = np.where(norms > 0.0, norms, 1.0)
    directions = directions / norms[:, None]

    sigma = lognormal_sigma_for_cov(length_cov)
    mu = np.log(mean_length) - 0.5 * sigma * sigma
    lengths = rng.lognormal(mean=mu, sigma=sigma, size=num_vectors)
    return directions * lengths[:, None]
