"""Dataset statistics reported in Table 1 of the paper."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_float_matrix


def length_cov(matrix) -> float:
    """Coefficient of variation (std / mean) of the row lengths of a matrix."""
    matrix = as_float_matrix(matrix, "matrix")
    lengths = np.linalg.norm(matrix, axis=1)
    mean = float(lengths.mean())
    if mean == 0.0:
        return 0.0
    return float(lengths.std() / mean)


def fraction_nonzero(matrix) -> float:
    """Fraction of non-zero entries of a matrix (1.0 = fully dense)."""
    matrix = as_float_matrix(matrix, "matrix")
    if matrix.size == 0:
        return 0.0
    return float(np.count_nonzero(matrix) / matrix.size)


def dataset_statistics(dataset) -> dict:
    """Table-1-style statistics for a :class:`~repro.datasets.registry.Dataset`."""
    return {
        "name": dataset.name,
        "num_queries": dataset.queries.shape[0],
        "num_probes": dataset.probes.shape[0],
        "rank": dataset.queries.shape[1],
        "query_length_cov": length_cov(dataset.queries),
        "probe_length_cov": length_cov(dataset.probes),
        "fraction_nonzero": fraction_nonzero(np.vstack([dataset.queries, dataset.probes])),
    }
