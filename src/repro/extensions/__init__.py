"""Extensions beyond the core LEMP algorithm.

The paper points out (Section 5, related work) that approximate schemes such
as clustering the query vectors and solving Row-Top-k only for the cluster
centroids "can directly be applied in combination with LEMP".  This package
implements that extension:

* :mod:`repro.extensions.kmeans` — a small spherical k-means substrate;
* :mod:`repro.extensions.clustered` — :class:`ClusteredTopK`, which answers
  Row-Top-k approximately by querying LEMP with centroids and sharing the
  retrieved candidate pool among the cluster's members.
"""

from repro.extensions.clustered import ClusteredTopK
from repro.extensions.kmeans import kmeans

__all__ = ["ClusteredTopK", "kmeans"]
