"""Spherical k-means over query directions.

Used by the clustered Row-Top-k extension: queries whose *directions* are
similar rank the probes similarly, so clustering by cosine similarity (i.e.
k-means on the unit sphere) groups queries that can share retrieval work.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import as_float_matrix, require_positive_int


def kmeans(
    vectors,
    num_clusters: int,
    num_iterations: int = 20,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Spherical k-means: cluster unit directions by cosine similarity.

    Parameters
    ----------
    vectors:
        ``(num_vectors, rank)`` array; rows are (not necessarily unit) vectors.
        Clustering operates on their directions.
    num_clusters:
        Number of centroids; capped at the number of vectors.
    num_iterations:
        Maximum Lloyd iterations (stops early on convergence).
    seed:
        Seed or generator for the centroid initialisation.

    Returns
    -------
    (centroids, assignment):
        ``centroids`` is ``(num_clusters, rank)`` with unit rows;
        ``assignment[i]`` is the centroid index of vector ``i``.
    """
    matrix = as_float_matrix(vectors, "vectors")
    require_positive_int(num_clusters, "num_clusters")
    require_positive_int(num_iterations, "num_iterations")
    rng = ensure_rng(seed)

    norms = np.linalg.norm(matrix, axis=1)
    directions = matrix / np.where(norms > 0.0, norms, 1.0)[:, None]
    num_vectors = directions.shape[0]
    num_clusters = min(num_clusters, num_vectors)

    chosen = rng.choice(num_vectors, size=num_clusters, replace=False)
    centroids = directions[chosen].copy()
    assignment = np.zeros(num_vectors, dtype=np.intp)

    for iteration in range(num_iterations):
        similarities = directions @ centroids.T
        new_assignment = np.argmax(similarities, axis=1)
        if iteration > 0 and np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for cluster in range(num_clusters):
            members = directions[assignment == cluster]
            if members.shape[0] == 0:
                # Re-seed an empty cluster with the vector farthest from its centroid.
                worst = int(np.argmin(np.max(similarities, axis=1)))
                centroids[cluster] = directions[worst]
                continue
            mean = members.mean(axis=0)
            norm = np.linalg.norm(mean)
            centroids[cluster] = mean / norm if norm > 0.0 else members[0]
    return centroids, assignment
