"""Approximate Row-Top-k via query clustering (paper Section 5, reference [17]).

Koenigstein et al. answer top-k retrieval approximately by clustering the
query vectors and retrieving only for the cluster centroids.  The paper notes
that "such a method can directly be applied in combination with LEMP"; this
module implements exactly that combination:

1. the query directions are clustered with spherical k-means;
2. LEMP answers Row-Top-(k·expansion) for each *centroid*;
3. every query is answered from its centroid's candidate pool by exact
   rescoring (so scores are exact, only the candidate pool is approximate).

The ``expansion`` factor trades recall for work: larger pools make it more
likely that every member query finds its true top-k inside the shared pool.
"""

from __future__ import annotations

import numpy as np

from repro.core.lemp import Lemp
from repro.core.results import TopKResult
from repro.core.stats import RunStats
from repro.engine.registry import register_retriever
from repro.exceptions import UnsupportedOperationError
from repro.extensions.kmeans import kmeans
from repro.utils.timer import Timer
from repro.utils.validation import as_float_matrix, check_rank_match, require_positive_int


@register_retriever("clustered", exact=False)
class ClusteredTopK:
    """Approximate Row-Top-k answering through cluster centroids.

    Parameters
    ----------
    num_clusters:
        Number of query clusters (centroids actually sent to LEMP).
    expansion:
        Pool size multiplier: each centroid retrieves ``expansion * k``
        candidates that its member queries are rescored against.
    algorithm, seed:
        Passed through to the underlying :class:`~repro.core.lemp.Lemp`.
    """

    name = "Clustered-LEMP"

    def __init__(self, num_clusters: int = 50, expansion: int = 4, algorithm: str = "LI", seed: int = 0) -> None:
        require_positive_int(num_clusters, "num_clusters")
        require_positive_int(expansion, "expansion")
        self.num_clusters = num_clusters
        self.expansion = expansion
        self.algorithm = algorithm
        self.seed = seed
        self.stats = RunStats()
        self._lemp: Lemp | None = None
        self._probes: np.ndarray | None = None

    def get_params(self) -> dict:
        return {
            "num_clusters": self.num_clusters,
            "expansion": self.expansion,
            "algorithm": self.algorithm,
            "seed": self.seed,
        }

    def fit(self, probes) -> "ClusteredTopK":
        """Index the probe matrix with LEMP."""
        self._probes = as_float_matrix(probes, "probes")
        self._lemp = Lemp(algorithm=self.algorithm, seed=self.seed).fit(self._probes)
        self.stats.preprocessing_seconds += self._lemp.stats.preprocessing_seconds
        return self

    @property
    def num_probes(self) -> int | None:
        """Number of indexed probe rows, or ``None`` before :meth:`fit`."""
        return None if self._probes is None else int(self._probes.shape[0])

    def above_theta(self, queries, theta: float):
        """Not supported: the clustered extension answers Row-Top-k only."""
        raise UnsupportedOperationError(
            "ClusteredTopK approximates Row-Top-k via query clustering and has "
            "no Above-theta mode; use a LEMP or baseline retriever instead"
        )

    def row_top_k(self, queries, k: int) -> TopKResult:
        """Approximate Row-Top-k for every query row (exact rescoring within pools)."""
        if self._lemp is None:
            raise RuntimeError("ClusteredTopK.fit(probes) must be called before retrieval")
        queries = as_float_matrix(queries, "queries")
        check_rank_match(queries, self._probes)
        require_positive_int(k, "k")
        num_queries = queries.shape[0]
        effective_k = min(k, self._probes.shape[0])

        with Timer() as cluster_timer:
            centroids, assignment = kmeans(
                queries, num_clusters=min(self.num_clusters, max(1, num_queries)), seed=self.seed
            )
        self.stats.tuning_seconds += cluster_timer.elapsed

        pool_size = min(self._probes.shape[0], self.expansion * effective_k)
        centroid_result = self._lemp.row_top_k(centroids, pool_size)

        indices = np.full((num_queries, k), -1, dtype=np.int64)
        scores = np.full((num_queries, k), -np.inf)
        with Timer() as rescore_timer:
            for cluster in range(centroids.shape[0]):
                members = np.nonzero(assignment == cluster)[0]
                if members.size == 0:
                    continue
                pool = centroid_result.indices[cluster]
                pool = pool[pool >= 0]
                if pool.size == 0:
                    continue
                block = queries[members] @ self._probes[pool].T
                self.stats.candidates += int(block.size)
                self.stats.inner_products += int(block.size)
                take = min(effective_k, pool.size)
                top = np.argpartition(-block, take - 1, axis=1)[:, :take]
                top_scores = np.take_along_axis(block, top, axis=1)
                order = np.argsort(-top_scores, axis=1, kind="stable")
                top = np.take_along_axis(top, order, axis=1)
                top_scores = np.take_along_axis(top_scores, order, axis=1)
                indices[members[:, None], np.arange(take)[None, :]] = pool[top]
                scores[members[:, None], np.arange(take)[None, :]] = top_scores
        self.stats.retrieval_seconds += rescore_timer.elapsed + self._lemp.stats.retrieval_seconds
        self.stats.num_queries += num_queries
        self.stats.results += int(np.sum(indices >= 0))
        return TopKResult(indices, scores, k)

    def recall_against(self, exact: TopKResult, approximate: TopKResult) -> float:
        """Average fraction of the exact top-k retrieved by the approximate answer."""
        total = 0.0
        rows = 0
        for exact_row, approx_row in zip(exact.row_sets(), approximate.row_sets()):
            if not exact_row:
                continue
            total += len(exact_row & approx_row) / len(exact_row)
            rows += 1
        return total / rows if rows else 1.0
